#include "eigenspeed/eigenspeed.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace flashflow::eigenspeed {

ObservationMatrix::ObservationMatrix(std::size_t n)
    : n_(n), data_(n * n, 0.0) {
  if (n == 0) throw std::invalid_argument("ObservationMatrix: empty");
}

double ObservationMatrix::at(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) throw std::out_of_range("ObservationMatrix::at");
  return data_[i * n_ + j];
}

void ObservationMatrix::set(std::size_t i, std::size_t j, double value) {
  if (i >= n_ || j >= n_) throw std::out_of_range("ObservationMatrix::set");
  data_[i * n_ + j] = value;
}

ObservationMatrix honest_observations(std::span<const double> capacities,
                                      double noise_sigma, sim::Rng& rng) {
  const std::size_t n = capacities.size();
  ObservationMatrix obs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double base = std::min(capacities[i], capacities[j]);
      const double noise = rng.log_normal(
          -0.5 * noise_sigma * noise_sigma, noise_sigma);
      obs.set(i, j, base * noise);
    }
  }
  return obs;
}

void apply_collusion(ObservationMatrix& obs,
                     std::span<const std::size_t> colluders,
                     double inflation) {
  // The targeted liar strategy: colluders report inflated throughput for
  // each other AND deflated throughput for everyone else. Under row
  // normalization this turns the clique into a near-absorbing set for the
  // power iteration, concentrating eigenvector mass on the colluders.
  for (const std::size_t i : colluders) {
    for (std::size_t j = 0; j < obs.size(); ++j) {
      if (i == j) continue;
      const bool j_colludes =
          std::find(colluders.begin(), colluders.end(), j) !=
          colluders.end();
      obs.set(i, j, j_colludes ? obs.at(i, j) * inflation
                               : obs.at(i, j) / inflation);
    }
  }
}

std::vector<double> compute_weights(const ObservationMatrix& obs,
                                    const std::vector<bool>& trusted,
                                    const EigenSpeedParams& params) {
  const std::size_t n = obs.size();
  if (trusted.size() != n)
    throw std::invalid_argument("compute_weights: size mismatch");

  // Row-normalize: each relay's reports form a probability-like vector, so
  // a relay cannot raise its own influence by inflating all its reports.
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) row_sum += obs.at(i, j);
    if (row_sum <= 0.0) continue;
    for (std::size_t j = 0; j < n; ++j)
      matrix[i * n + j] = obs.at(i, j) / row_sum;
  }

  // Initialize from the trusted indicator.
  std::size_t trusted_count = 0;
  for (const bool t : trusted)
    if (t) ++trusted_count;
  if (trusted_count == 0)
    throw std::invalid_argument("compute_weights: no trusted relays");
  std::vector<double> w(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    if (trusted[i]) w[i] = 1.0 / static_cast<double>(trusted_count);

  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // next = w^T * M (weights flow along observation edges).
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (w[i] <= 0.0) continue;
      for (std::size_t j = 0; j < n; ++j)
        next[j] += w[i] * matrix[i * n + j];
    }
    const double total = std::accumulate(next.begin(), next.end(), 0.0);
    if (total <= 0.0) break;
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      next[j] /= total;
      delta += std::abs(next[j] - w[j]);
    }
    w.swap(next);
    if (delta < params.tolerance) break;
  }
  return w;
}

std::vector<bool> detect_liars(const ObservationMatrix& obs,
                               std::span<const double> weights,
                               const std::vector<bool>& trusted,
                               const EigenSpeedParams& params) {
  const std::size_t n = obs.size();
  std::vector<bool> liar(n, false);

  // Trusted relays' observations *about* relay j give an independent
  // estimate of j's bandwidth; a relay whose eigenvector weight exceeds
  // that estimate's share by liar_threshold is flagged.
  std::vector<double> trusted_view(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!trusted[i] || i == j) continue;
      sum += obs.at(i, j);
      ++count;
    }
    trusted_view[j] = count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  const double view_total =
      std::accumulate(trusted_view.begin(), trusted_view.end(), 0.0);
  if (view_total <= 0.0) return liar;
  for (std::size_t j = 0; j < n; ++j) {
    const double expected = trusted_view[j] / view_total;
    if (expected > 0.0 && weights[j] / expected > params.liar_threshold)
      liar[j] = true;
  }
  return liar;
}

double collusion_advantage(std::span<const double> capacities,
                           std::span<const std::size_t> colluders,
                           double inflation, double trusted_fraction,
                           const EigenSpeedParams& params,
                           std::uint64_t seed) {
  const std::size_t n = capacities.size();
  sim::Rng rng(seed);
  ObservationMatrix obs = honest_observations(capacities, 0.15, rng);
  apply_collusion(obs, colluders, inflation);

  // Trust the first `trusted_fraction` of honest relays (colluders are
  // never trusted).
  std::vector<bool> trusted(n, false);
  std::size_t want =
      std::max<std::size_t>(1, static_cast<std::size_t>(n * trusted_fraction));
  for (std::size_t i = 0; i < n && want > 0; ++i) {
    if (std::find(colluders.begin(), colluders.end(), i) != colluders.end())
      continue;
    trusted[i] = true;
    --want;
  }

  const auto weights = compute_weights(obs, trusted, params);
  double colluder_weight = 0.0;
  double colluder_capacity = 0.0;
  for (const std::size_t c : colluders) {
    colluder_weight += weights[c];
    colluder_capacity += capacities[c];
  }
  const double total_capacity =
      std::accumulate(capacities.begin(), capacities.end(), 0.0);
  const double fair_share = colluder_capacity / total_capacity;
  return colluder_weight / fair_share;
}

}  // namespace flashflow::eigenspeed
