// EigenSpeed baseline (Snader & Borisov, IPTPS 2009; paper §8).
//
// Every relay records the average per-stream throughput it observes with
// every other relay and reports the vector to the directory authorities,
// who assemble the matrix and compute its principal eigenvector as the
// relay weights. The computation is initialized from a set of trusted
// relays; relays whose weights change atypically or end up inconsistent
// with their reported observations can be marked as liars and removed.
//
// Known attacks (PeerFlow paper, §8 here): Sybils get default 1/n weight;
// a colluding clique reporting inflated mutual observations can obtain up
// to ~21.5x its fair weight; an increase-framing attack can evict honest
// relays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/random.h"

namespace flashflow::eigenspeed {

/// Dense square observation matrix; row i holds relay i's reported
/// observations of each peer.
class ObservationMatrix {
 public:
  explicit ObservationMatrix(std::size_t n);

  std::size_t size() const { return n_; }
  double at(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, double value);

 private:
  std::size_t n_;
  std::vector<double> data_;
};

struct EigenSpeedParams {
  int max_iterations = 100;
  double tolerance = 1e-12;
  /// Liar detection: relays whose per-iteration weight inflation relative
  /// to the consensus exceeds this factor are flagged.
  double liar_threshold = 3.0;
};

/// Builds the honest observation matrix: relay pairs observe roughly
/// min(cap_i, cap_j) scaled by per-pair stream contention noise.
ObservationMatrix honest_observations(std::span<const double> capacities,
                                      double noise_sigma, sim::Rng& rng);

/// Colluding relays report `inflation` times their capacity for each other.
void apply_collusion(ObservationMatrix& obs,
                     std::span<const std::size_t> colluders, double inflation);

/// Principal-eigenvector weights via power iteration, initialized from the
/// trusted indicator vector (uniform over trusted relays). Rows are
/// normalized first so no relay controls the scale of its own column.
std::vector<double> compute_weights(const ObservationMatrix& obs,
                                    const std::vector<bool>& trusted,
                                    const EigenSpeedParams& params);

/// Flags relays whose final weight is wildly inconsistent with the
/// observations *about* them made by trusted relays.
std::vector<bool> detect_liars(const ObservationMatrix& obs,
                               std::span<const double> weights,
                               const std::vector<bool>& trusted,
                               const EigenSpeedParams& params);

/// Attack advantage: total normalized weight of the colluders divided by
/// their normalized true capacity.
double collusion_advantage(std::span<const double> capacities,
                           std::span<const std::size_t> colluders,
                           double inflation, double trusted_fraction,
                           const EigenSpeedParams& params, std::uint64_t seed);

}  // namespace flashflow::eigenspeed
