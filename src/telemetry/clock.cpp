#include "telemetry/telemetry.h"

#include <chrono>

namespace flashflow::telemetry {

namespace {

/// The library's single wall-clock read. Everything that needs time —
/// RunStats::wall_seconds, stage timers, trace micros — goes through the
/// Clock seam and ends up here, so ffcheck's ND03 rule has exactly one
/// justified suppression to audit (docs/determinism.md, clause T1).
class MonotonicClock final : public Clock {
 public:
  std::uint64_t now_micros() const override {
    // FFCHECK(ND03): the Clock seam's only wall-clock read. Timing flows
    // into telemetry (RunStats, stage histograms, trace files) and never
    // into estimates, result streams, or the golden hashes.
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  }
};

}  // namespace

const Clock& monotonic_clock() {
  static const MonotonicClock clock;
  return clock;
}

}  // namespace flashflow::telemetry
