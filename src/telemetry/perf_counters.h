// Hardware performance-counter sampling via Linux perf_event_open:
// instructions, cycles and LLC misses for a bracketed region of the
// calling process, surfaced as bench_campaign_scale --perf-counters
// columns and flashflow run --metrics output.
//
// Graceful degradation is the contract: containers and locked-down CI
// runners routinely deny perf_event_open (EACCES/EPERM via
// kernel.perf_event_paranoid, or ENOSYS under seccomp), and non-Linux
// builds have no syscall at all. In every such case the sampler
// constructs fine, available() is false, start()/stop() are no-ops and
// read() returns an invalid sample — callers never branch on platform,
// only on Sample::valid.
//
// The counters observe wall-time behavior of the process and are therefore
// nondeterministic; like every telemetry value they must never feed result
// streams (ffcheck clause T1, docs/determinism.md).
#pragma once

#include <cstdint>

namespace flashflow::telemetry {

class PerfSampler {
 public:
  struct Sample {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t cache_misses = 0;
    /// False when the counters could not be opened or read; every count
    /// is zero in that case.
    bool valid = false;

    double ipc() const {
      return cycles > 0 ? static_cast<double>(instructions) /
                              static_cast<double>(cycles)
                        : 0.0;
    }
  };

  /// Tries to open the counter group for the calling process; never
  /// throws. On any failure the sampler is inert.
  PerfSampler();
  ~PerfSampler();
  PerfSampler(const PerfSampler&) = delete;
  PerfSampler& operator=(const PerfSampler&) = delete;

  /// True when the counter group opened and can be read.
  bool available() const { return group_fd_ >= 0; }

  /// Resets and enables the counters (no-op when unavailable).
  void start();
  /// Disables the counters (no-op when unavailable).
  void stop();
  /// Reads the counters accumulated between start() and stop().
  Sample read() const;

 private:
  int group_fd_ = -1;
  int cycles_fd_ = -1;
  int cache_fd_ = -1;
};

}  // namespace flashflow::telemetry
