// Deterministic engine telemetry: named counters/gauges/histograms with
// per-lane shards, stage timers behind a Clock seam, and per-slot trace
// data (telemetry/trace.h serializes it).
//
// Design constraints, in force everywhere this header is used:
//
//   - Zero overhead when off. The engine holds a `Recorder*` that is null
//     by default; every instrumentation site is guarded on it, so a run
//     without a recorder executes the exact pre-telemetry instruction
//     stream (the golden hashes pin the output either way).
//   - No atomics or locks on the hot path. Each worker lane owns a
//     LaneShard — plain arrays it alone writes — and the Recorder merges
//     the shards in lane-index order after the pool has drained, so the
//     merged totals are identical for every thread count and shard size.
//   - No allocation inside FF_HOT regions. Shards are sized at
//     begin_run(); add()/observe() are array writes. Wall-clock reads go
//     through the Clock seam and happen only outside hot regions.
//   - Timing never reaches results. Stage micros flow into histograms and
//     trace files only; campaign estimates, CSV/JSONL result streams and
//     the golden hashes never see a clock value. ffcheck's ND03 rule
//     keeps it that way: the only wall-clock read in the library is the
//     one suppressed site in telemetry/clock.cpp (see docs/determinism.md).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace flashflow::telemetry {

/// Monotonic time source seam. The engine never reads a clock directly:
/// it asks the recorder's Clock, so tests can substitute a fake and
/// ffcheck can pin the real read to one justified site (clock.cpp).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic microseconds since an arbitrary epoch.
  virtual std::uint64_t now_micros() const = 0;
};

/// The process-wide monotonic clock (the library's single wall-clock
/// read). Named without any banned clock token on purpose.
const Clock& monotonic_clock();

/// Engine phases with stage timers around them. Per-slot stages (dispatch
/// through reorder_wait) are timed on the worker lane that ran the slot;
/// layout, retry_round and sink_serialize are timed in the serialized
/// sections of the campaign loop.
enum class Stage : int {
  kLayout = 0,      // scheduler layout (greedy pack / randomized period)
  kDispatch,        // §4.2 allocation + target build, per slot
  kFillPaths,       // PathModel::fill_paths bulk resolution, per slot
  kSolverPrepare,   // FairShareSolver::prepare (incl. crash re-prepares)
  kSolverSolve,     // the per-second segment loop (solve_prepared dominated)
  kReorderWait,     // SlotReorderBuffer::park wait + prefix flush
  kSinkSerialize,   // SlotSink::slot_done, under the reorder lock
  kRetryRound,      // one whole retry round (rounds after the first)
};
inline constexpr int kStageCount = 8;
std::string_view stage_name(Stage stage);

/// Per-stage wall micros for one slot, written by the engine while the
/// slot runs. Plain data; reset at each slot start. solver prepare/solve
/// spans overlap the enclosing dispatch/solve windows by design — each
/// stage answers "where did this slot's time go" independently.
struct SlotTiming {
  std::uint64_t dispatch_micros = 0;
  std::uint64_t fill_paths_micros = 0;
  std::uint64_t prepare_micros = 0;
  std::uint64_t solve_micros = 0;
  std::uint64_t reorder_micros = 0;
};

/// Per-slot execution trace attached to campaign::SlotResult when tracing
/// is enabled. `segments` is deterministic (a function of the fault plan);
/// `lane`, `shard` and `timing` depend on the thread count / shard size /
/// machine and are excluded from byte-identity checks.
struct SlotTrace {
  int lane = 0;
  /// Dispatch shard index the slot's work item belonged to (work index
  /// divided by the shard size).
  int shard = 0;
  /// Segments the per-second loop ran (1 on the fault-free path).
  int segments = 1;
  SlotTiming timing;
};

/// Fixed log2 bucket layout shared by every histogram: bucket b counts
/// values v with bit_width(v) == b (bucket 0: v == 0; the last bucket
/// absorbs everything >= 2^14). Fixed so shards merge by array addition.
inline constexpr std::size_t kHistogramBuckets = 16;

struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  friend bool operator==(const HistogramData&,
                         const HistogramData&) = default;
};

inline std::size_t histogram_bucket(std::uint64_t value) {
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

using MetricId = std::size_t;

/// Name table for counters, gauges and histograms. Registration is
/// idempotent (same name returns the same id) and happens at setup time
/// only: Recorder::begin_run sizes the lane shards from the registry, so
/// metrics registered mid-run would have no slots until the next run.
class Registry {
 public:
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name);

  const std::vector<std::string>& counter_names() const { return counters_; }
  const std::vector<std::string>& gauge_names() const { return gauges_; }
  const std::vector<std::string>& histogram_names() const { return hists_; }

 private:
  static MetricId intern(std::vector<std::string>& names,
                         std::string_view name);
  std::vector<std::string> counters_;
  std::vector<std::string> gauges_;
  std::vector<std::string> hists_;
};

/// One lane's private metric storage: plain arrays indexed by MetricId,
/// written lock-free by exactly one worker thread and merged after the
/// run has drained. add()/observe() never allocate.
class LaneShard {
 public:
  void add(MetricId counter, std::uint64_t v = 1) { counters_[counter] += v; }
  void gauge_max(MetricId gauge, double v) {
    if (v > gauges_[gauge]) gauges_[gauge] = v;
  }
  void observe(MetricId histogram, std::uint64_t value) {
    HistogramData& h = hists_[histogram];
    ++h.buckets[histogram_bucket(value)];
    ++h.count;
    h.sum += value;
  }

 private:
  friend class Recorder;
  void resize_for(const Registry& registry);
  void merge_into(LaneShard& into) const;

  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<HistogramData> hists_;
};

/// The MetricIds the campaign engine writes, pre-registered by Recorder so
/// instrumentation sites index arrays instead of interning names.
struct EngineMetrics {
  // Counters.
  MetricId slots = 0;          // campaign/slots delivered to workers
  MetricId relays = 0;         // campaign/relays measured
  MetricId retry_rounds = 0;   // campaign/retry_rounds executed
  MetricId trace_rows = 0;     // campaign/trace_slots emitted
  MetricId prepare_calls = 0;  // solver/prepare_calls
  MetricId solve_seconds = 0;  // solver/solve_seconds (solve_prepared calls)
  MetricId fill_calls = 0;     // paths/fill_calls (one per target per slot)
  // Gauges.
  MetricId active_flows = 0;   // solver/active_flows (max over slots)
  // Deterministic histograms.
  MetricId segments_hist = 0;      // slot/segments
  MetricId slot_relays_hist = 0;   // slot/relays
  // Stage timing histograms, indexed by Stage.
  std::array<MetricId, kStageCount> stage_hist{};

  static EngineMetrics register_in(Registry& registry);
};

/// Merged, name-sorted view of everything a Recorder accumulated.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;
};

/// Engine-facing per-lane handle: the clock plus the lane's shard plus
/// the current slot's stage timing. A default-constructed probe is
/// disarmed; every note_* call requires an armed probe (the engine holds
/// a null pointer instead when telemetry is off).
class SlotProbe {
 public:
  SlotProbe() = default;
  void arm(const Clock& clock, LaneShard& shard,
           const EngineMetrics& metrics) {
    clock_ = &clock;
    shard_ = &shard;
    metrics_ = &metrics;
  }
  bool armed() const { return clock_ != nullptr; }

  std::uint64_t now() const { return clock_->now_micros(); }
  LaneShard& shard() { return *shard_; }
  const EngineMetrics& metrics() const { return *metrics_; }

  void begin_slot() {
    timing_ = SlotTiming{};
    segments_ = 1;
  }
  SlotTiming& timing() { return timing_; }
  int segments() const { return segments_; }

  // Call-site helpers for the slot pipeline (core/measurement.cpp).
  void note_fill_paths(std::uint64_t micros, std::uint64_t calls) {
    timing_.fill_paths_micros += micros;
    shard_->add(metrics_->fill_calls, calls);
  }
  void note_prepare(std::uint64_t micros, std::size_t active_flows) {
    timing_.prepare_micros += micros;
    shard_->add(metrics_->prepare_calls);
    shard_->gauge_max(metrics_->active_flows,
                      static_cast<double>(active_flows));
  }
  void note_solve(std::uint64_t micros, std::uint64_t seconds) {
    timing_.solve_micros += micros;
    shard_->add(metrics_->solve_seconds, seconds);
  }
  void note_segments(int segments) { segments_ = segments; }

  /// Records the finished slot: slot/relay counters, the deterministic
  /// histograms, and one observation per stage timing histogram.
  void finish_slot(std::size_t slot_relays);

 private:
  const Clock* clock_ = nullptr;
  LaneShard* shard_ = nullptr;
  const EngineMetrics* metrics_ = nullptr;
  SlotTiming timing_;
  int segments_ = 1;
};

/// The telemetry session a caller attaches to a campaign run (or several:
/// multi-period experiments reuse one recorder and the shards accumulate).
/// Not thread-safe as a whole — the engine contract is: begin_run() and
/// end_run() from the driving thread; each lane(i) shard written by
/// exactly one worker; serial() written only from serialized sections
/// (layout/retry between rounds, sink delivery under the reorder lock).
class Recorder {
 public:
  /// `clock` is borrowed and must outlive the recorder; null selects the
  /// process monotonic clock.
  explicit Recorder(const Clock* clock = nullptr);

  Registry& registry() { return registry_; }
  /// The recorder's time source (not named clock(): ffcheck's ND03 flags
  /// that bare identifier wherever it appears).
  const Clock& time_source() const { return *clock_; }
  std::uint64_t now() const { return clock_->now_micros(); }
  const EngineMetrics& engine() const { return engine_; }

  /// Arms per-slot trace emission (campaign::SlotResult::trace).
  void enable_trace(bool on = true) { trace_ = on; }
  bool trace_enabled() const { return trace_; }

  /// Sizes one shard per lane (plus the serial shard) for a run. Metrics
  /// registered since the last run get fresh zero slots everywhere.
  void begin_run(std::size_t lanes);
  LaneShard& lane(std::size_t i) { return lanes_[i]; }
  /// Shard for the campaign loop's serialized sections.
  LaneShard& serial() { return serial_; }
  /// Convenience stage observation into the serial shard.
  void observe_stage(Stage stage, std::uint64_t micros) {
    serial_.observe(engine_.stage_hist[static_cast<int>(stage)], micros);
  }

  /// Merges lane shards (in lane-index order) and the serial shard into
  /// the accumulated totals, then drops the per-run shards.
  void end_run();

  /// Merged, name-sorted totals of every completed run.
  Snapshot snapshot() const;
  /// Merged totals as a small stable JSON document (`--metrics FILE`).
  void write_metrics(std::ostream& out) const;

 private:
  Registry registry_;
  const Clock* clock_;
  EngineMetrics engine_;
  bool trace_ = false;
  std::vector<LaneShard> lanes_;
  LaneShard serial_;
  LaneShard merged_;
};

}  // namespace flashflow::telemetry
