#include "telemetry/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace flashflow::telemetry {

#if defined(__linux__)

namespace {

int open_counter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // the leader starts the group
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Raw syscall: glibc has no wrapper. Counting the calling process on
  // any CPU; flags 0.
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

bool read_value(int fd, std::uint64_t& value) {
  return fd >= 0 &&
         ::read(fd, &value, sizeof value) ==
             static_cast<ssize_t>(sizeof value);
}

}  // namespace

PerfSampler::PerfSampler() {
  group_fd_ = open_counter(PERF_TYPE_HARDWARE,
                           PERF_COUNT_HW_INSTRUCTIONS, /*group_fd=*/-1);
  if (group_fd_ < 0) return;  // denied or unsupported: stay inert
  // The secondary counters are optional: a PMU with no cache-miss event
  // still yields instructions/cycles, and read() reports 0 for the rest.
  cycles_fd_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, group_fd_);
  cache_fd_ =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, group_fd_);
}

PerfSampler::~PerfSampler() {
  if (cache_fd_ >= 0) ::close(cache_fd_);
  if (cycles_fd_ >= 0) ::close(cycles_fd_);
  if (group_fd_ >= 0) ::close(group_fd_);
}

void PerfSampler::start() {
  if (group_fd_ < 0) return;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfSampler::stop() {
  if (group_fd_ < 0) return;
  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

PerfSampler::Sample PerfSampler::read() const {
  Sample sample;
  if (!read_value(group_fd_, sample.instructions)) return sample;
  read_value(cycles_fd_, sample.cycles);
  read_value(cache_fd_, sample.cache_misses);
  sample.valid = true;
  return sample;
}

#else  // !__linux__

PerfSampler::PerfSampler() = default;
PerfSampler::~PerfSampler() = default;
void PerfSampler::start() {}
void PerfSampler::stop() {}
PerfSampler::Sample PerfSampler::read() const { return {}; }

#endif

}  // namespace flashflow::telemetry
