// Per-slot JSONL trace sink.
//
// TraceJsonlSink rides the campaign's SlotSink path: deliveries arrive
// serialized and in increasing slot order through the SlotReorderBuffer,
// so the emitted line *order* is identical for every thread count and
// shard size, and within each line the deterministic fields — everything
// up to (but excluding) "lane" — are byte-identical too. The trailing
// fields (lane, dispatch shard, per-stage micros) describe how this
// particular execution scheduled the slot and vary run to run; trace
// byte-identity checks cut each line at `,"lane":` (the field order is
// part of the format contract, pinned by tests/test_telemetry.cpp).
//
// One line per relay estimate:
//   {"period":P,"slot":S,"relay":R,"segments":G,"attempt":A,"failed":F,
//    "quarantined":Q,"quality":X,"lane":L,"shard":H,"dispatch_us":...,
//    "fill_paths_us":...,"prepare_us":...,"solve_us":...}
//
// The sink requires tracing to be enabled on the run's Recorder
// (CampaignConfig::telemetry); deliveries without a SlotTrace attached
// are reported with the trace fields zeroed, so attaching the sink to an
// untraced run is visible rather than silently empty.
#pragma once

#include <iosfwd>

#include "campaign/campaign.h"
#include "campaign/sink.h"

namespace flashflow::telemetry {

class TraceJsonlSink : public campaign::SlotSink {
 public:
  explicit TraceJsonlSink(std::ostream& out) : out_(out) {}
  void begin(const campaign::RunPlan& plan) override;
  void slot_done(const campaign::SlotResult& slot) override;

 private:
  std::ostream& out_;
  int period_ = -1;
};

}  // namespace flashflow::telemetry
