#include "telemetry/telemetry.h"

#include <algorithm>
#include <ostream>

namespace flashflow::telemetry {

std::string_view stage_name(Stage stage) {
  switch (stage) {
    case Stage::kLayout: return "layout";
    case Stage::kDispatch: return "dispatch";
    case Stage::kFillPaths: return "fill_paths";
    case Stage::kSolverPrepare: return "solver_prepare";
    case Stage::kSolverSolve: return "solver_solve";
    case Stage::kReorderWait: return "reorder_wait";
    case Stage::kSinkSerialize: return "sink_serialize";
    case Stage::kRetryRound: return "retry_round";
  }
  return "unknown";
}

MetricId Registry::intern(std::vector<std::string>& names,
                          std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  names.emplace_back(name);
  return names.size() - 1;
}

MetricId Registry::counter(std::string_view name) {
  return intern(counters_, name);
}
MetricId Registry::gauge(std::string_view name) {
  return intern(gauges_, name);
}
MetricId Registry::histogram(std::string_view name) {
  return intern(hists_, name);
}

void LaneShard::resize_for(const Registry& registry) {
  counters_.assign(registry.counter_names().size(), 0);
  gauges_.assign(registry.gauge_names().size(), 0.0);
  hists_.assign(registry.histogram_names().size(), HistogramData{});
}

void LaneShard::merge_into(LaneShard& into) const {
  for (std::size_t i = 0; i < counters_.size(); ++i)
    into.counters_[i] += counters_[i];
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    if (gauges_[i] > into.gauges_[i]) into.gauges_[i] = gauges_[i];
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    HistogramData& h = into.hists_[i];
    const HistogramData& from = hists_[i];
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      h.buckets[b] += from.buckets[b];
    h.count += from.count;
    h.sum += from.sum;
  }
}

EngineMetrics EngineMetrics::register_in(Registry& registry) {
  EngineMetrics m;
  m.slots = registry.counter("campaign/slots");
  m.relays = registry.counter("campaign/relays");
  m.retry_rounds = registry.counter("campaign/retry_rounds");
  m.trace_rows = registry.counter("campaign/trace_slots");
  m.prepare_calls = registry.counter("solver/prepare_calls");
  m.solve_seconds = registry.counter("solver/solve_seconds");
  m.fill_calls = registry.counter("paths/fill_calls");
  m.active_flows = registry.gauge("solver/active_flows");
  m.segments_hist = registry.histogram("slot/segments");
  m.slot_relays_hist = registry.histogram("slot/relays");
  for (int s = 0; s < kStageCount; ++s)
    m.stage_hist[static_cast<std::size_t>(s)] = registry.histogram(
        "stage/" + std::string(stage_name(static_cast<Stage>(s))));
  return m;
}

void SlotProbe::finish_slot(std::size_t slot_relays) {
  shard_->add(metrics_->slots);
  shard_->add(metrics_->relays, slot_relays);
  shard_->observe(metrics_->segments_hist,
                  static_cast<std::uint64_t>(segments_));
  shard_->observe(metrics_->slot_relays_hist,
                  static_cast<std::uint64_t>(slot_relays));
  const auto stage = [&](Stage s) {
    return metrics_->stage_hist[static_cast<std::size_t>(s)];
  };
  shard_->observe(stage(Stage::kDispatch), timing_.dispatch_micros);
  shard_->observe(stage(Stage::kFillPaths), timing_.fill_paths_micros);
  shard_->observe(stage(Stage::kSolverPrepare), timing_.prepare_micros);
  shard_->observe(stage(Stage::kSolverSolve), timing_.solve_micros);
  shard_->observe(stage(Stage::kReorderWait), timing_.reorder_micros);
}

Recorder::Recorder(const Clock* clock)
    : clock_(clock != nullptr ? clock : &monotonic_clock()),
      engine_(EngineMetrics::register_in(registry_)) {
  merged_.resize_for(registry_);
}

void Recorder::begin_run(std::size_t lanes) {
  lanes_.resize(lanes);
  for (LaneShard& shard : lanes_) shard.resize_for(registry_);
  serial_.resize_for(registry_);
  // Metrics registered since construction (or the previous run) get their
  // zeroed slots in the accumulator too, so merge widths always agree.
  if (merged_.counters_.size() != registry_.counter_names().size() ||
      merged_.gauges_.size() != registry_.gauge_names().size() ||
      merged_.hists_.size() != registry_.histogram_names().size()) {
    LaneShard grown;
    grown.resize_for(registry_);
    merged_.merge_into(grown);
    merged_ = std::move(grown);
  }
}

void Recorder::end_run() {
  for (const LaneShard& shard : lanes_) shard.merge_into(merged_);
  serial_.merge_into(merged_);
  lanes_.clear();
  serial_.resize_for(registry_);
}

namespace {

template <typename T>
std::vector<std::pair<std::string, T>> sorted_by_name(
    const std::vector<std::string>& names, const std::vector<T>& values) {
  std::vector<std::pair<std::string, T>> out;
  out.reserve(names.size());
  for (std::size_t i = 0; i < names.size() && i < values.size(); ++i)
    out.emplace_back(names[i], values[i]);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace

Snapshot Recorder::snapshot() const {
  Snapshot snap;
  snap.counters =
      sorted_by_name(registry_.counter_names(), merged_.counters_);
  snap.gauges = sorted_by_name(registry_.gauge_names(), merged_.gauges_);
  snap.histograms =
      sorted_by_name(registry_.histogram_names(), merged_.hists_);
  return snap;
}

void Recorder::write_metrics(std::ostream& out) const {
  const Snapshot snap = snapshot();
  out << "{\n  \"flashflow_metrics\": 1,\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i)
    out << (i ? ",\n    " : "\n    ") << "\"" << snap.counters[i].first
        << "\": " << snap.counters[i].second;
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i)
    out << (i ? ",\n    " : "\n    ") << "\"" << snap.gauges[i].first
        << "\": " << snap.gauges[i].second;
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    out << (i ? ",\n    " : "\n    ") << "\"" << name
        << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"buckets\": [";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      out << h.buckets[b] << (b + 1 < kHistogramBuckets ? ", " : "");
    out << "]}";
  }
  out << "\n  }\n}\n";
}

}  // namespace flashflow::telemetry
