#include "telemetry/trace.h"

#include <charconv>
#include <ostream>
#include <string>

namespace flashflow::telemetry {

namespace {

// Same round-trip double formatting as campaign/sink.cpp: shortest
// std::to_chars form, so trace files are stable and diffable.
std::string fmt(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace

void TraceJsonlSink::begin(const campaign::RunPlan& plan) {
  (void)plan;
  ++period_;
}

void TraceJsonlSink::slot_done(const campaign::SlotResult& slot) {
  const SlotTrace trace = slot.trace.value_or(SlotTrace{});
  for (std::size_t i = 0; i < slot.estimates.size(); ++i) {
    const campaign::RelayEstimate& est = slot.estimates[i];
    // Field order is the format contract: everything before "lane" is
    // deterministic (tests cut each line at `,"lane":`).
    out_ << "{\"period\":" << period_ << ",\"slot\":" << slot.slot
         << ",\"relay\":" << slot.relay_indices[i]
         << ",\"segments\":" << trace.segments
         << ",\"attempt\":" << est.attempt
         << ",\"failed\":" << (est.slot_failed ? "true" : "false")
         << ",\"quarantined\":" << (est.quarantined ? "true" : "false")
         << ",\"quality\":" << fmt(est.quality)
         << ",\"lane\":" << trace.lane << ",\"shard\":" << trace.shard
         << ",\"dispatch_us\":" << trace.timing.dispatch_micros
         << ",\"fill_paths_us\":" << trace.timing.fill_paths_micros
         << ",\"prepare_us\":" << trace.timing.prepare_micros
         << ",\"solve_us\":" << trace.timing.solve_micros << "}\n";
  }
}

}  // namespace flashflow::telemetry
