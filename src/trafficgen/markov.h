// TGen-style Markov traffic model (paper §7: "TGen clients that use Tor
// Markov models to generate the traffic flows of 40k Tor users").
//
// Each simulated user alternates between Idle and Active states; while
// Active it opens streams with exponential inter-arrival times and
// heavy-tailed (log-normal body, Pareto tail) stream sizes. The model's
// aggregate offered load is what the shadowsim load levels (100/115/130%)
// scale.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace flashflow::trafficgen {

struct MarkovParams {
  double idle_mean_s = 60.0;        // mean dwell in Idle
  double active_mean_s = 30.0;      // mean dwell in Active
  double stream_interarrival_s = 5.0;  // while Active
  double stream_size_lognormal_mu = 11.0;    // exp(11) ~ 60 KB body
  double stream_size_lognormal_sigma = 1.5;
  double pareto_tail_prob = 0.03;   // occasional bulk transfer
  double pareto_tail_xm_bytes = 2.0e6;
  double pareto_tail_alpha = 1.3;
};

struct Stream {
  sim::SimTime start = 0;
  double bytes = 0;
};

/// One user's stream schedule over a horizon. Deterministic in the rng.
std::vector<Stream> generate_user_streams(const MarkovParams& params,
                                          sim::SimDuration horizon,
                                          sim::Rng& rng);

/// Expected offered load of one user in bytes/second (analytic, used to
/// size aggregate background load without materializing every stream).
double expected_user_load_bytes_per_s(const MarkovParams& params);

/// Aggregate offered load (bits/s) of `users` users.
double aggregate_offered_bits(const MarkovParams& params, int users);

}  // namespace flashflow::trafficgen
