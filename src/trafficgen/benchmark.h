// Benchmark clients mirroring Tor's performance measurement process
// (paper §7: 40 TGen clients repeatedly downloading 50 KiB, 1 MiB, and
// 5 MiB files with 15/60/120-second timeouts).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace flashflow::trafficgen {

enum class TransferSize : int { k50KiB = 0, k1MiB = 1, k5MiB = 2 };

inline constexpr std::array<double, 3> kTransferBytes = {
    50.0 * 1024, 1024.0 * 1024, 5.0 * 1024 * 1024};
inline constexpr std::array<double, 3> kTransferTimeoutS = {15.0, 60.0,
                                                            120.0};
inline constexpr std::array<const char*, 3> kTransferNames = {"50KiB",
                                                              "1MiB", "5MiB"};

struct TransferRecord {
  TransferSize size = TransferSize::k50KiB;
  sim::SimTime start = 0;
  double ttfb_s = 0;   // time to first byte
  double ttlb_s = 0;   // time to last byte (includes ttfb)
  bool timed_out = false;
};

/// Aggregated benchmark results across clients.
struct BenchmarkResults {
  std::vector<TransferRecord> records;

  std::vector<double> ttfb_all() const;
  std::vector<double> ttlb_for(TransferSize size) const;
  /// Error (timeout) rate across all transfers, in [0,1].
  double error_rate() const;
  /// Error rate for one size.
  double error_rate_for(TransferSize size) const;
};

}  // namespace flashflow::trafficgen
