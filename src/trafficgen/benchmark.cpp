#include "trafficgen/benchmark.h"

namespace flashflow::trafficgen {

std::vector<double> BenchmarkResults::ttfb_all() const {
  std::vector<double> out;
  for (const auto& r : records)
    if (!r.timed_out) out.push_back(r.ttfb_s);
  return out;
}

std::vector<double> BenchmarkResults::ttlb_for(TransferSize size) const {
  std::vector<double> out;
  for (const auto& r : records)
    if (!r.timed_out && r.size == size) out.push_back(r.ttlb_s);
  return out;
}

double BenchmarkResults::error_rate() const {
  if (records.empty()) return 0.0;
  std::size_t errors = 0;
  for (const auto& r : records)
    if (r.timed_out) ++errors;
  return static_cast<double>(errors) / records.size();
}

double BenchmarkResults::error_rate_for(TransferSize size) const {
  std::size_t total = 0, errors = 0;
  for (const auto& r : records) {
    if (r.size != size) continue;
    ++total;
    if (r.timed_out) ++errors;
  }
  return total == 0 ? 0.0 : static_cast<double>(errors) / total;
}

}  // namespace flashflow::trafficgen
