#include "trafficgen/markov.h"

#include <cmath>

#include "net/units.h"

namespace flashflow::trafficgen {

std::vector<Stream> generate_user_streams(const MarkovParams& params,
                                          sim::SimDuration horizon,
                                          sim::Rng& rng) {
  std::vector<Stream> streams;
  sim::SimTime now = 0;
  bool active = rng.chance(params.active_mean_s /
                           (params.active_mean_s + params.idle_mean_s));
  while (now < horizon) {
    if (!active) {
      now += sim::from_seconds(rng.exponential(params.idle_mean_s));
      active = true;
      continue;
    }
    const sim::SimTime active_end =
        now + sim::from_seconds(rng.exponential(params.active_mean_s));
    while (now < active_end && now < horizon) {
      now += sim::from_seconds(rng.exponential(params.stream_interarrival_s));
      if (now >= active_end || now >= horizon) break;
      Stream s;
      s.start = now;
      if (rng.chance(params.pareto_tail_prob))
        s.bytes = rng.pareto(params.pareto_tail_xm_bytes,
                             params.pareto_tail_alpha);
      else
        s.bytes = rng.log_normal(params.stream_size_lognormal_mu,
                                 params.stream_size_lognormal_sigma);
      streams.push_back(s);
    }
    now = active_end;
    active = false;
  }
  return streams;
}

double expected_user_load_bytes_per_s(const MarkovParams& params) {
  // Fraction of time Active times stream rate times mean stream size.
  const double active_fraction =
      params.active_mean_s / (params.active_mean_s + params.idle_mean_s);
  const double streams_per_s =
      active_fraction / params.stream_interarrival_s;
  const double lognormal_mean =
      std::exp(params.stream_size_lognormal_mu +
               0.5 * params.stream_size_lognormal_sigma *
                   params.stream_size_lognormal_sigma);
  const double pareto_mean =
      params.pareto_tail_alpha > 1.0
          ? params.pareto_tail_xm_bytes * params.pareto_tail_alpha /
                (params.pareto_tail_alpha - 1.0)
          : params.pareto_tail_xm_bytes * 10.0;  // heavy-tail fallback
  const double mean_bytes = (1.0 - params.pareto_tail_prob) * lognormal_mean +
                            params.pareto_tail_prob * pareto_mean;
  return streams_per_s * mean_bytes;
}

double aggregate_offered_bits(const MarkovParams& params, int users) {
  return net::bits_from_bytes(expected_user_load_bytes_per_s(params)) *
         users;
}

}  // namespace flashflow::trafficgen
